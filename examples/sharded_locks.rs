//! Sharded multi-resource locking: one 4-node cluster serializing four
//! named resources on four independent shards, each guarding its own
//! counter.
//!
//! Run with: `cargo run --release --example sharded_locks`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tokq::core::{Cluster, ResourceId};
use tokq::protocol::arbiter::ArbiterConfig;
use tokq::protocol::types::TimeDelta;

const ROUNDS: u64 = 25;

fn main() {
    // Four nodes, four shards: four independent token rotations share one
    // transport mesh. Short phases keep the demo snappy.
    let config = ArbiterConfig::fault_tolerant()
        .with_t_collect(TimeDelta::from_millis(1))
        .with_t_forward(TimeDelta::from_millis(1));
    let cluster = Cluster::builder(4).shards(4).config(config).build();

    // Pick resource names that land on four distinct shards (the stable
    // FNV mapping makes this search deterministic).
    let mut names: Vec<String> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for i in 0u64.. {
        let name = format!("ledger/{i}");
        if seen.insert(ResourceId::new(name.as_str()).shard(cluster.shards())) {
            names.push(name);
            if names.len() == 4 {
                break;
            }
        }
    }

    // One counter per resource, each only ever touched while holding that
    // resource's lock. Every node updates every resource.
    let counters: Vec<Arc<AtomicU64>> = (0..4).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let mut workers = Vec::new();
    for node in 0..cluster.len() {
        for (name, counter) in names.iter().zip(&counters) {
            let handle = cluster
                .resource_on(node, name.as_str())
                .expect("node in range");
            let counter = Arc::clone(counter);
            workers.push(std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    let _guard = handle.lock().expect("granted");
                    // Non-atomic read-modify-write protected by the lock.
                    let v = counter.load(Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(50));
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
    }
    for w in workers {
        w.join().expect("worker panicked");
    }

    let expected = ROUNDS * cluster.len() as u64;
    for (name, counter) in names.iter().zip(&counters) {
        let shard = ResourceId::new(name.as_str()).shard(cluster.shards());
        let v = counter.load(Ordering::Relaxed);
        println!("{name} (shard {shard}): counter = {v} (expected {expected})");
        assert_eq!(v, expected, "updates to {name} must be serialized");
    }
    let m = cluster.metrics_handle();
    cluster.shutdown();
    println!(
        "critical sections per shard: {:?} ({} total, {:.2} msgs/CS)",
        m.cs_completed_by_shard(),
        m.cs_completed_total(),
        m.messages_per_cs(),
    );
}
