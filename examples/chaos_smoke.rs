//! Bounded chaos smoke run: one seeded fault schedule (crash/recover,
//! partition/heal, loss bursts) against a live 5-node fault-tolerant
//! cluster, with the online safety checker watching every critical
//! section.
//!
//! Run with: `cargo run --release --example chaos_smoke`
//!
//! Exits non-zero on a mutual-exclusion violation or a stalled run —
//! `scripts/check.sh` uses this as its chaos smoke stage. The fixed seed
//! keeps the schedule identical on every run; a reported failure is
//! replayable by construction.

use std::time::Duration;

use tokq::core::chaos::{soak, SoakOptions};

fn main() {
    // Replay hooks: `TOKQ_CHAOS_SEED=<n>` reruns a failed soak's schedule,
    // `TOKQ_CHAOS_TCP=1` moves it onto loopback TCP, and `TOKQ_CHAOS_OPS`,
    // `TOKQ_CHAOS_TARGET`, `TOKQ_CHAOS_LIMIT_SECS` match the failed run's
    // shape when it differed from the smoke defaults.
    let env_u64 = |key: &str| std::env::var(key).ok().and_then(|s| s.parse::<u64>().ok());
    let seed = env_u64("TOKQ_CHAOS_SEED").unwrap_or(0xC0FFEE);
    let mut opts = SoakOptions::quick(5, seed);
    opts.tcp = std::env::var("TOKQ_CHAOS_TCP").is_ok_and(|v| v == "1");
    opts.ops = env_u64("TOKQ_CHAOS_OPS").unwrap_or(30) as usize;
    opts.target_entries = env_u64("TOKQ_CHAOS_TARGET").unwrap_or(300);
    opts.time_limit = Duration::from_secs(env_u64("TOKQ_CHAOS_LIMIT_SECS").unwrap_or(8));
    // `TOKQ_CHAOS_LEVEL=debug|trace` deepens the flight recorder for replay
    // forensics (the ring buffer keeps the last events before a wedge).
    match std::env::var("TOKQ_CHAOS_LEVEL").as_deref() {
        Ok("debug") => opts.recorder = Some((16_384, tokq::obs::Level::Debug)),
        Ok("trace") => opts.recorder = Some((65_536, tokq::obs::Level::Trace)),
        _ => {}
    }
    let report = soak(&opts);
    println!("chaos smoke: {}", report.summary());
    for (i, op) in report.ops_applied.iter().enumerate() {
        println!("  step {i:>2}: {op}");
    }
    if !report.passed() {
        eprintln!(
            "chaos smoke FAILED — replay with seed {} (violations: {:?}, timed_out: {})",
            report.seed, report.violations, report.timed_out
        );
        std::process::exit(1);
    }
}
