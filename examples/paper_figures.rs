//! Reproduce the paper's headline result in miniature: the average number
//! of messages per critical section falls from ≈N at light load to ≈3 at
//! heavy load (Figures 3/6, Eqs. 1–5).
//!
//! Run with: `cargo run --release --example paper_figures`

use tokq::analysis::formulas;
use tokq::analysis::report::Table;
use tokq::protocol::arbiter::ArbiterConfig;
use tokq::simnet::{SimConfig, Simulation};
use tokq::workload::Workload;

fn main() {
    let n = 10;
    let mut table = Table::new(
        "messages per critical section vs load (N=10, paper parameters)",
        &[
            "lambda_req_per_s",
            "measured",
            "eq1_light_bound",
            "eq4_heavy_bound",
        ],
    );
    for lambda in [0.05, 0.2, 0.5, 1.0, 3.0, 10.0] {
        let report = Simulation::build(
            SimConfig::paper_defaults(n),
            ArbiterConfig::basic(),
            Workload::poisson(lambda),
        )
        .run_until_cs(10_000);
        table.row(vec![
            lambda.into(),
            report.messages_per_cs().into(),
            formulas::arbiter_messages_light(n).into(),
            formulas::arbiter_messages_heavy(n).into(),
        ]);
    }
    println!("{}", table.to_ascii());
    println!(
        "The measured column should slide from ≈{:.1} down to ≈{:.1} as load rises.",
        formulas::arbiter_messages_light(n),
        formulas::arbiter_messages_heavy(n)
    );
}
