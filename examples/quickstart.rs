//! Quickstart: a 5-node in-process cluster guarding a critical section.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tokq::core::{Cluster, NetOptions};
use tokq::obs::Level;
use tokq::protocol::arbiter::ArbiterConfig;
use tokq::protocol::types::TimeDelta;

fn main() {
    // Five nodes running the paper's algorithm on real threads, with 1 ms
    // of simulated network delay between them. Short protocol phases keep
    // the demo snappy. The flight recorder keeps the last protocol events
    // for a JSONL post-mortem dump; set TOKQ_TRACE=debug (or
    // `arbiter=debug,net=trace`) to also stream events live.
    let config = ArbiterConfig::fault_tolerant()
        .with_t_collect(TimeDelta::from_millis(2))
        .with_t_forward(TimeDelta::from_millis(2));
    let cluster = Cluster::builder(5)
        .config(config)
        .net(NetOptions::delayed(
            Duration::from_millis(1),
            Duration::from_micros(200),
        ))
        .flight_recorder(512, Level::Debug)
        .build();

    // A shared value only ever touched inside the distributed lock.
    let shared = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for node in 0..cluster.len() {
        let handle = cluster.handle(node).expect("in range");
        let shared = Arc::clone(&shared);
        workers.push(std::thread::spawn(move || {
            for _ in 0..20 {
                let _guard = handle.lock().expect("granted");
                // Inside the critical section: a read-modify-write that
                // would race without mutual exclusion.
                let v = shared.load(Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(50));
                shared.store(v + 1, Ordering::Relaxed);
            }
        }));
    }
    for w in workers {
        w.join().expect("worker panicked");
    }

    let total = shared.load(Ordering::Relaxed);
    println!("shared counter: {total} (expected {})", 5 * 20);
    assert_eq!(total, 100, "lost update ⇒ mutual exclusion was violated");

    let m = cluster.metrics();
    println!(
        "critical sections: {}   messages: {}   messages/CS: {:.2}",
        m.cs_completed_total(),
        m.messages_total(),
        m.messages_per_cs()
    );
    println!("message kinds: {:?}", m.by_kind());

    // Latency histograms from the observability registry: how long lock()
    // callers waited for their grant.
    let snap = cluster.obs().registry().snapshot();
    if let Some(h) = snap.histograms.get("span_ns/cs_grant") {
        println!(
            "cs_grant wait: p50 ≤ {:.2} ms   p99 ≤ {:.2} ms   max = {:.2} ms",
            h.p50 as f64 / 1e6,
            h.p99 as f64 / 1e6,
            h.max as f64 / 1e6
        );
    }

    // The flight recorder holds the most recent protocol events as JSONL —
    // the same schema the simulator emits, so the two can be diffed.
    let recorder = cluster.flight_recorder().expect("recorder attached");
    println!(
        "\nlast protocol events (of {} recorded):",
        recorder.recorded_total()
    );
    let dump = recorder.dump_jsonl();
    for line in dump
        .lines()
        .rev()
        .take(8)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
    {
        println!("  {line}");
    }
    cluster.shutdown();
}
