//! Fault tolerance on the threaded runtime: crash a node mid-run (possibly
//! while it holds the token) and watch the cluster recover and keep
//! granting the lock.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tokq::core::{Cluster, NetOptions};
use tokq::protocol::arbiter::{ArbiterConfig, RecoveryConfig};
use tokq::protocol::types::TimeDelta;

fn main() {
    // Aggressive recovery timeouts so the demo converges quickly.
    let recovery = RecoveryConfig {
        token_wait_base: TimeDelta::from_millis(80),
        token_wait_per_position: TimeDelta::from_millis(20),
        enquiry_timeout: TimeDelta::from_millis(40),
        handover_watch: TimeDelta::from_millis(150),
        probe_timeout: TimeDelta::from_millis(40),
    };
    let config = ArbiterConfig {
        recovery: Some(recovery),
        ..ArbiterConfig::basic()
            .with_t_collect(TimeDelta::from_millis(2))
            .with_t_forward(TimeDelta::from_millis(2))
    };
    let cluster = Arc::new(
        Cluster::builder(5)
            .config(config)
            .net(NetOptions::delayed(
                Duration::from_micros(500),
                Duration::from_micros(100),
            ))
            .build(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let granted = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    // Nodes 1..5 hammer the lock; node 0 is the crash victim.
    for node in 1..cluster.len() {
        let handle = cluster.handle(node).expect("in range");
        let stop = Arc::clone(&stop);
        let granted = Arc::clone(&granted);
        workers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if let Ok(guard) = handle.try_lock_for(Duration::from_secs(5)) {
                    granted.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(200));
                    drop(guard);
                }
            }
        }));
    }

    std::thread::sleep(Duration::from_millis(300));
    let before = granted.load(Ordering::Relaxed);
    println!("grants before crash: {before}");

    println!("crashing node 0 (the initial arbiter / token holder)...");
    cluster.crash(0).expect("crash node 0");
    std::thread::sleep(Duration::from_millis(700));
    let during = granted.load(Ordering::Relaxed);
    println!("grants while node 0 is down: {}", during - before);

    println!("recovering node 0...");
    cluster.recover(0).expect("recover node 0");
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker panicked");
    }

    let after = granted.load(Ordering::Relaxed);
    println!("total grants: {after}");
    let m = cluster.metrics();
    println!(
        "token regenerations: {}   invalidations: {}   arbiter takeovers: {}",
        m.notes().get("token_regenerated").copied().unwrap_or(0),
        m.notes().get("invalidation_started").copied().unwrap_or(0),
        m.notes().get("arbiter_takeover").copied().unwrap_or(0),
    );
    assert!(
        during > before,
        "the cluster must keep granting after the crash"
    );
    match Arc::try_unwrap(cluster) {
        Ok(c) => c.shutdown(),
        Err(_) => unreachable!("workers joined"),
    }
}
