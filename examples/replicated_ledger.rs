//! A domain scenario: a replicated append-only ledger where every node may
//! append, but appends must be totally ordered — exactly the "multiple
//! activities sharing one resource" motivation of the paper's introduction.
//!
//! Each node holds a full copy of the ledger; an append happens inside the
//! distributed critical section and is broadcast out-of-band (here: a
//! shared Vec guarded by the distributed lock, so divergence is
//! impossible *only if* mutual exclusion holds).
//!
//! Run with: `cargo run --release --example replicated_ledger`

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use tokq::core::{Cluster, NetOptions};
use tokq::protocol::arbiter::ArbiterConfig;
use tokq::protocol::types::TimeDelta;

#[derive(Debug, Clone, PartialEq, Eq)]
struct LedgerEntry {
    seq: u64,
    node: usize,
    payload: String,
}

fn main() {
    let nodes = 4;
    let appends_per_node = 25;
    let config = ArbiterConfig::fault_tolerant()
        .with_t_collect(TimeDelta::from_millis(1))
        .with_t_forward(TimeDelta::from_millis(1));
    let cluster = Cluster::builder(nodes)
        .config(config)
        .net(NetOptions::delayed(
            Duration::from_micros(300),
            Duration::from_micros(100),
        ))
        .build();

    // The "replicated" ledger: one canonical copy whose sequence numbers
    // must come out gap-free and strictly increasing. Writers only touch
    // it while holding the distributed lock.
    let ledger: Arc<Mutex<Vec<LedgerEntry>>> = Arc::new(Mutex::new(Vec::new()));

    let mut workers = Vec::new();
    for node in 0..nodes {
        let handle = cluster.handle(node).expect("in range");
        let ledger = Arc::clone(&ledger);
        workers.push(std::thread::spawn(move || {
            for i in 0..appends_per_node {
                let guard = handle.lock().expect("granted");
                {
                    let mut l = ledger.lock();
                    let seq = l.last().map(|e| e.seq + 1).unwrap_or(0);
                    l.push(LedgerEntry {
                        seq,
                        node,
                        payload: format!("txn-{node}-{i}"),
                    });
                }
                drop(guard);
            }
        }));
    }
    for w in workers {
        w.join().expect("writer panicked");
    }

    let l = ledger.lock();
    println!("ledger length: {} entries", l.len());
    assert_eq!(l.len(), nodes * appends_per_node);
    for (i, e) in l.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "sequence gap ⇒ lost mutual exclusion");
    }
    // Show the interleaving of the first few entries.
    for e in l.iter().take(12) {
        println!("  #{:<3} from node {}  {}", e.seq, e.node, e.payload);
    }
    println!(
        "all {} appends totally ordered; messages/append: {:.2}",
        l.len(),
        cluster.metrics().messages_per_cs()
    );
    drop(l);
    cluster.shutdown();
}
