//! The paper's §2.2 illustrative example (Figure 2), replayed on the
//! simulator with a full event trace.
//!
//! Run with: `cargo run --release --example fig2_walkthrough`

use tokq::protocol::arbiter::ArbiterConfig;
use tokq::simnet::{SimConfig, SimTime, Simulation};
use tokq::workload::fig2_script;

fn main() {
    let mut cfg = SimConfig::paper_defaults(5);
    cfg.warmup_cs = 0;
    cfg.trace = true;
    cfg.max_sim_time = Some(SimTime::from_secs_f64(5.0));
    let sim = Simulation::build(cfg, ArbiterConfig::basic(), fig2_script());
    let (report, trace) = sim.run_to_quiescence_with_trace();

    println!("paper §2.2 walkthrough — node 1 is the initial arbiter;");
    println!("nodes 2 and 5 request during its collection phase, node 4 during");
    println!("forwarding, and node 3 at the next arbiter (ids are 0-based here):\n");
    print!("{}", trace.render());
    println!("\ncritical sections completed: {}", report.cs_total);
    println!("message counts: {:?}", report.messages_by_kind);
    assert_eq!(report.cs_total, 4, "nodes 2, 5, 4 and 3 each enter once");
}
