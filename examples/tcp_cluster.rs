//! The distributed mutex over real TCP sockets: same protocol, same API,
//! frames on the loopback network instead of in-process channels.
//!
//! Run with: `cargo run --release --example tcp_cluster`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tokq::core::Cluster;
use tokq::protocol::arbiter::ArbiterConfig;
use tokq::protocol::types::TimeDelta;

fn main() {
    let config = ArbiterConfig::fault_tolerant()
        .with_t_collect(TimeDelta::from_millis(2))
        .with_t_forward(TimeDelta::from_millis(2));
    let cluster = Cluster::builder(4).config(config).tcp().build();
    let counter = Arc::new(AtomicU64::new(0));

    let mut workers = Vec::new();
    for node in 0..cluster.len() {
        let handle = cluster.handle(node).expect("in range");
        let counter = Arc::clone(&counter);
        workers.push(std::thread::spawn(move || {
            for _ in 0..15 {
                let _guard = handle.lock().expect("granted");
                // Non-atomic read-modify-write protected by the lock.
                let v = counter.load(Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_micros(100));
                counter.store(v + 1, Ordering::Relaxed);
            }
        }));
    }
    for w in workers {
        w.join().expect("worker panicked");
    }
    let total = counter.load(Ordering::Relaxed);
    println!("counter = {total} (expected 60) — all updates serialized over TCP");
    assert_eq!(total, 60);
    let m = cluster.metrics_handle();
    cluster.shutdown();
    println!(
        "messages {} over {} critical sections ({:.2}/CS), kinds {:?}",
        m.messages_total(),
        m.cs_completed_total(),
        m.messages_per_cs(),
        m.by_kind()
    );
}
