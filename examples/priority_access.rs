//! Prioritized access (paper §5.2): arbiter-ordered priorities are
//! *incremental* — applied at each seal — and low-priority nodes gravitate
//! toward the tail, which makes them arbiters and prevents starvation.
//!
//! Run with: `cargo run --release --example priority_access`

use tokq::analysis::report::Table;
use tokq::protocol::arbiter::{ArbiterConfig, Fairness};
use tokq::protocol::types::Priority;
use tokq::simnet::{SimConfig, Simulation};
use tokq::workload::Workload;

fn main() {
    let n = 6;
    // Node i gets priority i: node 5 is the most important.
    let cfg = ArbiterConfig {
        fairness: Fairness::Priority,
        priorities: (0..n as u32).map(Priority).collect(),
        ..ArbiterConfig::basic()
    };
    let report = Simulation::build(SimConfig::paper_defaults(n), cfg, Workload::saturating())
        .run_until_cs(30_000);

    let mut table = Table::new(
        "prioritized access under saturation (N=6, priority = node id)",
        &["node", "priority", "critical_sections"],
    );
    for (i, &count) in report.per_node_cs.iter().enumerate() {
        table.row(vec![i.into(), i.into(), count.into()]);
    }
    println!("{}", table.to_ascii());
    println!(
        "Even the lowest-priority node keeps making progress (no starvation):\n\
         every node completed at least {} critical sections.",
        report.per_node_cs.iter().min().unwrap()
    );
    assert!(
        report.per_node_cs.iter().all(|&c| c > 0),
        "§5.2: static priorities must not starve low-priority nodes"
    );
}
